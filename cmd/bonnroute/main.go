// Command bonnroute routes a synthetic chip with either the BonnRoute
// flow (resource-sharing global routing + interval-based detailed
// routing + DRC cleanup) or the ISR-like baseline flow, and prints the
// §5.3-style metrics.
//
// Usage:
//
//	bonnroute [-flow br|isr|both] [-rows N] [-cols N] [-nets N]
//	          [-seed N] [-workers N] [-phases N] [-layers N] [-v]
//	          [-trace file.jsonl] [-progress]
//
// -trace streams the full span/event/counter record stream as JSON
// lines to a file; -progress prints a live, indented span log to
// stderr. Ctrl-C cancels the run at the next stage, phase or round
// boundary and the partial metrics are still printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bonnroute"
	"bonnroute/internal/chip"
	"bonnroute/internal/report"
)

func main() {
	var (
		flow     = flag.String("flow", "both", "br, isr, or both")
		rows     = flag.Int("rows", 8, "placement rows")
		cols     = flag.Int("cols", 24, "placement columns")
		nets     = flag.Int("nets", 120, "number of nets")
		layers   = flag.Int("layers", 6, "wiring layers")
		seed     = flag.Int64("seed", 1, "generator / rounding seed")
		workers  = flag.Int("workers", 1, "parallel workers")
		phases   = flag.Int("phases", 32, "resource sharing phases (t)")
		radius   = flag.Int("radius", 8, "net locality radius (slots)")
		verbose  = flag.Bool("v", false, "print per-stage details")
		traceOut = flag.String("trace", "", "write a JSONL trace to this file")
		progress = flag.Bool("progress", false, "print live span progress to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var sinks []bonnroute.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bonnroute: %v\n", err)
			os.Exit(1)
		}
		js := bonnroute.NewJSONLSink(f)
		defer func() {
			if err := js.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "bonnroute: trace: %v\n", err)
			}
			f.Close()
		}()
		sinks = append(sinks, js)
	}
	if *progress {
		sinks = append(sinks, bonnroute.NewProgressSink(os.Stderr))
	}
	tracer := bonnroute.NewTracer(sinks...)

	gen := func() *chip.Chip {
		return chip.Generate(chip.GenParams{
			Seed: *seed, Rows: *rows, Cols: *cols, NumNets: *nets,
			NumLayers: *layers, LocalityRadius: *radius,
			PowerStripePeriod: 6,
		})
	}
	opts := []bonnroute.Option{
		bonnroute.WithWorkers(*workers),
		bonnroute.WithSeed(*seed),
		bonnroute.WithGlobalConfig(bonnroute.GlobalConfig{Phases: *phases}),
		bonnroute.WithTracer(tracer),
	}

	var rowsOut []report.Metrics
	runBR := *flow == "br" || *flow == "both"
	runISR := *flow == "isr" || *flow == "both"

	if runISR {
		c := gen()
		fmt.Fprintf(os.Stderr, "routing %d nets (ISR flow)...\n", len(c.Nets))
		res := bonnroute.RouteBaseline(ctx, c, opts...)
		rowsOut = append(rowsOut, res.Metrics)
		if *verbose {
			printDetails(res)
		}
	}
	if runBR {
		c := gen()
		fmt.Fprintf(os.Stderr, "routing %d nets (BonnRoute flow)...\n", len(c.Nets))
		res := bonnroute.Route(ctx, c, opts...)
		rowsOut = append(rowsOut, res.Metrics)
		if *verbose {
			printDetails(res)
		}
	}
	fmt.Print(report.FormatTableI(rowsOut))
}

func printDetails(res *bonnroute.Result) {
	if res.Cancelled {
		fmt.Println("  (cancelled — partial results)")
	}
	if res.Global != nil {
		fmt.Printf("  global: λ=%.3f oracle calls=%d reuses=%d rechosen=%d rerouted=%d overflowed=%d unrouted=%d iters=%d (alg2 %v, total %v)\n",
			res.Global.Lambda, res.Global.OracleCalls, res.Global.OracleReuses,
			res.Global.Rechosen, res.Global.Rerouted, res.Global.Overflowed,
			res.Global.Unrouted, res.Global.Iterations,
			res.Global.AlgTime, res.Global.Total)
	}
	fmt.Printf("  detail: routed=%d failed=%d rounds=%d time=%v fastgrid-hit=%.4f cleanup=%v fixed=%d\n",
		res.Detail.Routed, res.Detail.Failed, res.Detail.Rounds, res.DetailTime,
		res.FastGridHitRate, res.CleanupTime, res.CleanupFixed)
	fmt.Printf("  audit: diffnet=%d minarea=%d notch=%d shortedge=%d opens=%d\n",
		res.Audit.DiffNetViolations, res.Audit.MinAreaViolations,
		res.Audit.NotchViolations, res.Audit.ShortEdgeShapes, res.Audit.Opens)
}
