// Command bonnroute routes a synthetic chip with either the BonnRoute
// flow (resource-sharing global routing + interval-based detailed
// routing + DRC cleanup) or the ISR-like baseline flow, and prints the
// §5.3-style metrics.
//
// Usage:
//
//	bonnroute [-flow br|isr|both] [-rows N] [-cols N] [-nets N]
//	          [-seed N] [-workers N] [-phases N] [-layers N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/report"
)

func main() {
	var (
		flow    = flag.String("flow", "both", "br, isr, or both")
		rows    = flag.Int("rows", 8, "placement rows")
		cols    = flag.Int("cols", 24, "placement columns")
		nets    = flag.Int("nets", 120, "number of nets")
		layers  = flag.Int("layers", 6, "wiring layers")
		seed    = flag.Int64("seed", 1, "generator / rounding seed")
		workers = flag.Int("workers", 1, "parallel workers")
		phases  = flag.Int("phases", 32, "resource sharing phases (t)")
		radius  = flag.Int("radius", 8, "net locality radius (slots)")
		verbose = flag.Bool("v", false, "print per-stage details")
	)
	flag.Parse()

	gen := func() *chip.Chip {
		return chip.Generate(chip.GenParams{
			Seed: *seed, Rows: *rows, Cols: *cols, NumNets: *nets,
			NumLayers: *layers, LocalityRadius: *radius,
			PowerStripePeriod: 6,
		})
	}
	opt := core.Options{Workers: *workers, GlobalPhases: *phases, Seed: *seed}

	var rowsOut []report.Metrics
	runBR := *flow == "br" || *flow == "both"
	runISR := *flow == "isr" || *flow == "both"

	if runISR {
		c := gen()
		fmt.Fprintf(os.Stderr, "routing %d nets (ISR flow)...\n", len(c.Nets))
		res := core.RouteBaseline(c, opt)
		rowsOut = append(rowsOut, res.Metrics)
		if *verbose {
			printDetails(res)
		}
	}
	if runBR {
		c := gen()
		fmt.Fprintf(os.Stderr, "routing %d nets (BonnRoute flow)...\n", len(c.Nets))
		res := core.RouteBonnRoute(c, opt)
		rowsOut = append(rowsOut, res.Metrics)
		if *verbose {
			printDetails(res)
		}
	}
	fmt.Print(report.FormatTableI(rowsOut))
}

func printDetails(res *core.Result) {
	if res.Global != nil {
		fmt.Printf("  global: λ=%.3f oracle calls=%d reuses=%d rechosen=%d rerouted=%d overflowed=%d (alg2 %v, total %v)\n",
			res.Global.Lambda, res.Global.OracleCalls, res.Global.OracleReuses,
			res.Global.Rechosen, res.Global.Rerouted, res.Global.Overflowed,
			res.Global.AlgTime, res.Global.Total)
	}
	fmt.Printf("  detail: routed=%d failed=%d time=%v fastgrid-hit=%.4f cleanup=%v\n",
		res.Detail.Routed, res.Detail.Failed, res.DetailTime,
		res.FastGridHitRate, res.CleanupTime)
	fmt.Printf("  audit: diffnet=%d minarea=%d notch=%d shortedge=%d opens=%d\n",
		res.Audit.DiffNetViolations, res.Audit.MinAreaViolations,
		res.Audit.NotchViolations, res.Audit.ShortEdgeShapes, res.Audit.Opens)
}
