// Command chipgen generates a synthetic chip and writes it as JSON to
// stdout — useful for inspecting the workloads the benchmarks run on and
// for replaying instances in other tools.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
)

// jsonChip is the serialization schema.
type jsonChip struct {
	Name   string      `json:"name"`
	Area   geom.Rect   `json:"area"`
	Layers []jsonLayer `json:"layers"`
	Cells  int         `json:"num_cells"`
	Pins   []jsonPin   `json:"pins,omitempty"`
	Nets   []jsonNet   `json:"nets"`
	Obst   []jsonObst  `json:"obstacles,omitempty"`
}

type jsonLayer struct {
	Z     int    `json:"z"`
	Dir   string `json:"dir"`
	Pitch int    `json:"pitch"`
}

type jsonPin struct {
	Net    int         `json:"net"`
	Shapes []jsonShape `json:"shapes"`
}

type jsonShape struct {
	Layer int       `json:"layer"`
	Rect  geom.Rect `json:"rect"`
}

type jsonNet struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Pins     []int  `json:"pins"`
	Critical bool   `json:"critical,omitempty"`
	Wide     bool   `json:"wide,omitempty"`
}

type jsonObst struct {
	Layer int       `json:"layer"`
	Rect  geom.Rect `json:"rect"`
}

func main() {
	var (
		rows   = flag.Int("rows", 8, "placement rows")
		cols   = flag.Int("cols", 16, "placement columns")
		nets   = flag.Int("nets", 80, "number of nets")
		layers = flag.Int("layers", 6, "wiring layers")
		seed   = flag.Int64("seed", 1, "generator seed")
		full   = flag.Bool("full", false, "include pin and obstacle geometry")
	)
	flag.Parse()

	c := chip.Generate(chip.GenParams{
		Seed: *seed, Rows: *rows, Cols: *cols, NumNets: *nets,
		NumLayers: *layers, PowerStripePeriod: 6,
	})
	if err := c.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "generated chip invalid:", err)
		os.Exit(1)
	}

	out := jsonChip{Name: c.Name, Area: c.Area, Cells: len(c.Cells)}
	for _, l := range c.Layers {
		out.Layers = append(out.Layers, jsonLayer{
			Z: l.Z, Dir: l.Dir.String(), Pitch: c.Deck.Layers[l.Z].Pitch,
		})
	}
	for ni := range c.Nets {
		n := &c.Nets[ni]
		out.Nets = append(out.Nets, jsonNet{
			ID: n.ID, Name: n.Name, Pins: n.Pins,
			Critical: n.Critical, Wide: n.WireType != 0,
		})
	}
	if *full {
		for pi := range c.Pins {
			p := &c.Pins[pi]
			jp := jsonPin{Net: p.Net}
			for _, s := range p.Shapes {
				jp.Shapes = append(jp.Shapes, jsonShape{Layer: s.Layer, Rect: s.Rect})
			}
			out.Pins = append(out.Pins, jp)
		}
		for _, o := range c.AllObstacles() {
			out.Obst = append(out.Obst, jsonObst{Layer: o.Layer, Rect: o.Rect})
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
