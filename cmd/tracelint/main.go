// Command tracelint validates a JSONL trace file produced by the
// -trace flag: every line must parse as a JSON object with a kind and a
// name, span starts and ends must pair up, and (with -require-stages)
// the trace must contain the full BonnRoute stage skeleton — the four
// BR stages plus per-phase global and per-round detail spans.
//
// Usage:
//
//	tracelint [-require-stages] trace.jsonl
//
// Exit status 0 means the trace is well-formed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type line struct {
	Kind string `json:"kind"`
	Span uint64 `json:"span"`
	Name string `json:"name"`
}

func main() {
	requireStages := flag.Bool("require-stages", false,
		"require the full BonnRoute stage/phase/round span skeleton")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-require-stages] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	spans := map[string]int{} // span name -> start count
	open := map[uint64]string{}
	events := map[string]int{}
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			fail("line %d: not valid JSON: %v", lines, err)
		}
		if l.Kind == "" || l.Name == "" {
			fail("line %d: missing kind or name: %s", lines, sc.Text())
		}
		switch l.Kind {
		case "span_start":
			spans[l.Name]++
			open[l.Span] = l.Name
		case "span_end":
			if _, ok := open[l.Span]; !ok {
				fail("line %d: span_end for span %d that never started", lines, l.Span)
			}
			delete(open, l.Span)
		case "event", "counter", "gauge":
			events[l.Name]++
		default:
			fail("line %d: unknown kind %q", lines, l.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		fail("%v", err)
	}
	if lines == 0 {
		fail("trace is empty")
	}
	for id, name := range open {
		fail("span %d (%s) started but never ended", id, name)
	}
	if *requireStages {
		for _, want := range []string{
			"flow.br", "stage.capest", "stage.global", "stage.detail",
			"stage.cleanup", "global.phase", "detail.round",
		} {
			if spans[want] == 0 {
				fail("required span %q missing from trace", want)
			}
		}
	}
	fmt.Printf("tracelint: ok (%d lines, %d span names, %d event names)\n",
		lines, len(spans), len(events))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracelint: "+format+"\n", args...)
	os.Exit(1)
}
