// Command routed is the routing-as-a-service daemon: it serves the
// bonnroute session API over HTTP JSON. Sessions pin a chip and its
// finished routing result in memory; ECO deltas, result fetches and
// cheap capacity-only routability assessments are applied against
// them.
//
//	POST   /sessions                  create (routes the chip; stream:true or
//	                                  Accept: text/event-stream for SSE progress)
//	GET    /sessions                  list
//	GET    /sessions/{name}           metadata
//	GET    /sessions/{name}/result    current summary + last ECO stats
//	POST   /sessions/{name}/reroute   apply an ECO delta (optimistic
//	                                  from_generation token; FIFO per session)
//	POST   /sessions/{name}/assess    capacity-only routability pre-screen
//	DELETE /sessions/{name}           drop a session
//	GET    /healthz                   liveness
//
// Routing flows are admission-controlled: at most -max-inflight run
// concurrently, -max-queue more wait, the rest get 429 + Retry-After.
// SIGINT/SIGTERM trigger graceful shutdown: in-flight flows are
// cancelled at their next boundary, nothing partial is committed, and
// the listener drains before exit.
//
// -smoke starts the daemon on a loopback port, runs one
// create/reroute/assess round-trip against it over real HTTP, shuts
// down cleanly and exits — the self-contained health check behind
// `make service-smoke`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bonnroute/internal/service"
)

func main() {
	addr := flag.String("addr", ":7473", "listen address")
	maxInFlight := flag.Int("max-inflight", 2, "maximum concurrently running routing flows")
	maxQueue := flag.Int("max-queue", 0, "additional flows admitted to wait (0 = 2*max-inflight)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	streamBuf := flag.Int("stream-buffer", 256, "SSE trace-record buffer per streaming request")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	smoke := flag.Bool("smoke", false, "start on a loopback port, run one API round-trip, shut down, exit")
	flag.Parse()

	svc := service.New(service.Config{
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		RetryAfter:   *retryAfter,
		StreamBuffer: *streamBuf,
	})
	httpSrv := &http.Server{Handler: svc}

	if *smoke {
		if err := runSmoke(svc, httpSrv, *shutdownTimeout); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("smoke: ok")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	log.Printf("routed: serving on %s (max-inflight %d)", ln.Addr(), *maxInFlight)

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("routed: %v, shutting down", s)
	case err := <-done:
		log.Fatalf("routed: serve: %v", err)
	}

	// Cancel in-flight routing flows first (they commit nothing
	// partial), then drain the HTTP layer.
	svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatalf("routed: shutdown: %v", err)
	}
	log.Print("routed: bye")
}

// runSmoke is the daemon's self-check: bind a loopback port, walk one
// session through create → reroute → assess → result → delete over
// real HTTP, then shut down gracefully.
func runSmoke(svc *service.Server, httpSrv *http.Server, drain time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Minute}

	post := func(path string, body string) (int, []byte, error) {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}

	code, out, err := post("/sessions", `{
		"name": "smoke",
		"chip": {"seed": 7, "rows": 3, "cols": 8, "num_nets": 12, "num_layers": 3, "locality_radius": 3},
		"options": {"seed": 7}
	}`)
	if err != nil || code != http.StatusCreated {
		return fmt.Errorf("create: code %d err %v: %s", code, err, out)
	}

	code, out, err = post("/sessions/smoke/reroute", `{
		"from_generation": 1,
		"delta": {"remove_nets": [0]}
	}`)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("reroute: code %d err %v: %s", code, err, out)
	}
	var rr struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(out, &rr); err != nil || rr.Generation != 2 {
		return fmt.Errorf("reroute generation %d err %v: %s", rr.Generation, err, out)
	}

	code, out, err = post("/sessions/smoke/assess", `{"delta": {"remove_nets": [1]}}`)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("assess: code %d err %v: %s", code, err, out)
	}

	resp, err := client.Get(base + "/sessions/smoke/result")
	if err != nil {
		return fmt.Errorf("result: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: code %d: %s", resp.StatusCode, out)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/smoke", nil)
	resp, err = client.Do(req)
	if err != nil {
		return fmt.Errorf("delete: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("delete: code %d", resp.StatusCode)
	}

	svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %v", err)
	}
	return nil
}
