// Command routebench regenerates the paper's evaluation tables on a
// suite of synthetic chips: Table I (ISR vs BR+cleanup full flows),
// Table II (global routing netlength over Steiner length by terminal
// count), Table III (BR-global vs ISR-global), and table 4, the
// path-search engine micro-benchmarks (interval vs node labelling,
// bucket vs heap queue, steady-state allocation counts).
//
// Usage:
//
//	routebench [-table 0|1|2|3|4] [-suite small|medium|large|scaling] [-workers N]
//	           [-workers-sweep 1,2,4,8] [-sweep-runs N] [-diff-parallel f] [-eco]
//	           [-cpuprofile f] [-memprofile f] [-bench-json f]
//	           [-trace f.jsonl] [-progress]
//
// -table 0 (default) prints everything. -bench-json writes the runs'
// machine-readable results (per-stage timings, path-search effort
// counters, micro-benchmark rows) to the given file.
//
// -eco replaces the tables with the incremental (ECO) rerouting
// comparison: every suite chip is routed once, a small random delta
// (a few percent of the netlist) is applied, and incremental.Reroute
// is timed against a from-scratch run of the same mutated chip. Both
// results must clear the verifier; -bench-json then writes the
// comparison document (BENCH_eco.json).
//
// -workers-sweep replaces the tables with the detail-stage scaling
// sweep: every suite chip is measured at each worker count with
// runtime.GOMAXPROCS set to that count — one untimed warmup run, then
// the median of -sweep-runs measured runs — and the host CPU model and
// logical-CPU count are recorded alongside. The quality fields are
// required to be bit-identical across counts and runs (the §5.1
// determinism contract), and -bench-json then writes the scaling
// document (BENCH_parallel.json) carrying both the measured and the
// clearly-labeled modeled (LPT critical path) speedups. -diff-parallel
// compares the sweep's quality fields against a committed artifact and
// exits non-zero on drift (the `make bench-scaling` gate).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"bonnroute/internal/baseline"
	"bonnroute/internal/capest"
	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/obs"
	"bonnroute/internal/pathsearch"
	"bonnroute/internal/report"
	"bonnroute/internal/sharing"
	"bonnroute/internal/steiner"
	"bonnroute/internal/tracks"
)

// flowJSON is one full-flow run in the -bench-json output.
type flowJSON struct {
	Name        string     `json:"name"`
	Pi          string     `json:"pi,omitempty"` // future cost the detail stage ran with
	GlobalMS    float64    `json:"global_ms"`
	DetailMS    float64    `json:"detail_ms"`
	CleanupMS   float64    `json:"cleanup_ms"`
	TotalMS     float64    `json:"total_ms"`
	Netlength   int64      `json:"netlength"`
	Vias        int        `json:"vias"`
	Scenic25    int        `json:"scenic25"`
	Scenic50    int        `json:"scenic50"`
	Errors      int        `json:"errors"`
	Unrouted    int        `json:"unrouted"`
	SearchStats *statsJSON `json:"search_stats,omitempty"`
}

// statsJSON mirrors pathsearch.Stats without omitempty: the library type
// elides zero counters (useful for compact traces), but in the committed
// benchmark artifacts a missing counter is ambiguous — the ISR flows run
// the node-based search, which legitimately performs zero crossing
// expansions, and that zero must be visible rather than absent.
type statsJSON struct {
	Labels    int `json:"labels"`
	HeapPops  int `json:"heap_pops"`
	Expanded  int `json:"expanded"`
	Intervals int `json:"intervals"`
	Searches  int `json:"searches"`
	PiReused  int `json:"pi_reused"`
}

// benchRowJSON is one micro-benchmark row (testing.Benchmark output).
type benchRowJSON struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchJSON is the -bench-json document.
type benchJSON struct {
	Suite      string         `json:"suite"`
	Workers    int            `json:"workers"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Flows      []flowJSON     `json:"flows,omitempty"`
	PathSearch []benchRowJSON `json:"pathsearch_bench,omitempty"`
	// SeedBaseline holds the same micro-benchmarks measured at the
	// pre-engine commit, for the speedup/allocation comparison.
	SeedBaseline []benchRowJSON `json:"seed_baseline,omitempty"`
	SeedRef      string         `json:"seed_ref,omitempty"`
}

var collect *benchJSON

// runCtx and tracer configure every flow run in this process; set up in
// main from -trace / -progress.
var (
	runCtx = context.Background()
	tracer *obs.Tracer
)

// suite returns the chip parameter sets standing in for the paper's
// eight IBM designs (scaled to laptop size; three tiers).
func suite(name string) []chip.GenParams {
	switch name {
	case "eco":
		// The -eco chips: medium-to-large designs whose full-flow cost is
		// dominated by routing work (global solve + detail search) rather
		// than the stage costs both flows share (space/track construction,
		// final audit), so the comparison measures what the ECO engine
		// actually avoids.
		return []chip.GenParams{
			{Name: "eco1", Seed: 12, Rows: 8, Cols: 24, NumNets: 140, NumLayers: 6, LocalityRadius: 12, PowerStripePeriod: 4},
			{Name: "eco2", Seed: 13, Rows: 10, Cols: 32, NumNets: 240, NumLayers: 6, LocalityRadius: 8, PowerStripePeriod: 8},
			{Name: "eco3", Seed: 13, Rows: 12, Cols: 40, NumNets: 420, NumLayers: 6, LocalityRadius: 10, PowerStripePeriod: 8},
			{Name: "eco4", Seed: 14, Rows: 12, Cols: 48, NumNets: 520, NumLayers: 6, LocalityRadius: 20, PowerStripePeriod: 8},
		}
	case "small":
		return []chip.GenParams{
			{Name: "chip1", Seed: 11, Rows: 6, Cols: 16, NumNets: 60, NumLayers: 4, LocalityRadius: 6, PowerStripePeriod: 6},
			{Name: "chip2", Seed: 12, Rows: 6, Cols: 16, NumNets: 60, NumLayers: 6, LocalityRadius: 10, PowerStripePeriod: 4},
		}
	case "scaling":
		// The -workers-sweep chips: wide (many columns) so regionSchedule
		// opens with 8+ strips, and local (small radius) so most nets are
		// strip-assignable and the parallel rounds carry the flow. wide3
		// is the large instance: wide enough for a 16-strip opening round,
		// giving 8 workers real slack (≥2 tasks each before stealing).
		return []chip.GenParams{
			{Name: "wide1", Seed: 11, Rows: 8, Cols: 96, NumNets: 240, NumLayers: 4, LocalityRadius: 2, PowerStripePeriod: 6},
			{Name: "wide2", Seed: 12, Rows: 6, Cols: 96, NumNets: 220, NumLayers: 4, LocalityRadius: 2, PowerStripePeriod: 4},
			{Name: "wide3", Seed: 13, Rows: 10, Cols: 256, NumNets: 640, NumLayers: 4, LocalityRadius: 2, PowerStripePeriod: 6},
		}
	case "large":
		return []chip.GenParams{
			{Name: "chip1", Seed: 11, Rows: 10, Cols: 32, NumNets: 260, NumLayers: 4, LocalityRadius: 8, PowerStripePeriod: 6},
			{Name: "chip2", Seed: 12, Rows: 10, Cols: 32, NumNets: 260, NumLayers: 6, LocalityRadius: 14, PowerStripePeriod: 4},
			{Name: "chip3", Seed: 13, Rows: 12, Cols: 40, NumNets: 420, NumLayers: 6, LocalityRadius: 10, PowerStripePeriod: 8},
			{Name: "chip4", Seed: 14, Rows: 12, Cols: 48, NumNets: 520, NumLayers: 6, LocalityRadius: 20, PowerStripePeriod: 8},
		}
	default: // medium
		return []chip.GenParams{
			{Name: "chip1", Seed: 11, Rows: 8, Cols: 24, NumNets: 140, NumLayers: 4, LocalityRadius: 6, PowerStripePeriod: 6},
			{Name: "chip2", Seed: 12, Rows: 8, Cols: 24, NumNets: 140, NumLayers: 6, LocalityRadius: 12, PowerStripePeriod: 4},
			{Name: "chip3", Seed: 13, Rows: 10, Cols: 32, NumNets: 240, NumLayers: 6, LocalityRadius: 8, PowerStripePeriod: 8},
		}
	}
}

func main() {
	var (
		table      = flag.Int("table", 0, "which table to print (0 = tables I-III; 4 = path-search micro-benchmarks)")
		suiteName  = flag.String("suite", "medium", "small, medium, or large")
		workers    = flag.Int("workers", 1, "parallel workers")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file (taken at exit)")
		benchOut   = flag.String("bench-json", "", "write machine-readable results to this file")
		traceOut   = flag.String("trace", "", "write a JSONL trace to this file")
		progress   = flag.Bool("progress", false, "print live span progress to stderr")
		sweepArg   = flag.String("workers-sweep", "", "comma-separated worker counts (first must be 1); runs the detail-stage scaling sweep instead of the tables")
		sweepRuns  = flag.Int("sweep-runs", 3, "with -workers-sweep: measured runs per worker count (median reported; one extra warmup run)")
		diffPar    = flag.String("diff-parallel", "", "with -workers-sweep: compare quality fields against this BENCH_parallel.json and exit non-zero on drift")
		ecoMode    = flag.Bool("eco", false, "run the incremental (ECO) rerouting comparison instead of the tables; -bench-json writes BENCH_eco.json")
		svcMode    = flag.Bool("service", false, "benchmark the routing service daemon over loopback HTTP instead of the tables; -bench-json writes BENCH_service.json")
		svcDeltas  = flag.Int("service-deltas", 30, "with -service: length of the seeded ECO delta stream")
		steinMode  = flag.Bool("steiner", false, "compare the exact Steiner oracle against Path Composition per degree bucket; -bench-json writes BENCH_steiner.json")
		scaleNets  = flag.Int("scale-nets", 100000, "with -suite huge: net count of the scale run")
		scaleSeed  = flag.Int64("scale-seed", 777, "with -suite huge: chip seed (also seeds the verifier's sampling)")
		shardTiles = flag.Int("shard-tiles", 8, "with -suite huge: congestion-region shard size in tiles (0 = unsharded)")
	)
	flag.Parse()

	var sinks []obs.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		js := obs.NewJSONLSink(f)
		defer func() {
			if err := js.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
			f.Close()
		}()
		sinks = append(sinks, js)
	}
	if *progress {
		sinks = append(sinks, obs.NewProgressSink(os.Stderr))
	}
	tracer = obs.New(sinks...)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *benchOut != "" {
		collect = &benchJSON{Suite: *suiteName, Workers: *workers, GoMaxProcs: runtime.GOMAXPROCS(0)}
	}

	params := suite(*suiteName)
	var benchDoc any = collect
	if *suiteName == "huge" {
		// The scale tier: one verified large run with the sampled pass
		// matrix and footprint report; -bench-json writes BENCH_scale.json.
		benchDoc = scaleBench(*scaleNets, *scaleSeed, *workers, *shardTiles)
	} else if *svcMode {
		benchDoc = serviceBench(*workers, *svcDeltas)
	} else if *steinMode {
		benchDoc = steinerBench(*suiteName, params)
	} else if *ecoMode {
		benchDoc = ecoBench(*suiteName, params, *workers)
	} else if *sweepArg != "" {
		counts, err := parseWorkerCounts(*sweepArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workers-sweep:", err)
			os.Exit(1)
		}
		doc := workersSweep(*suiteName, params, counts, *sweepRuns)
		if *diffPar != "" {
			if err := diffParallel(doc, *diffPar); err != nil {
				fmt.Fprintln(os.Stderr, "diff-parallel:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "quality fields match %s\n", *diffPar)
		}
		benchDoc = doc
	} else {
		if *table == 0 || *table == 1 {
			tableI(params, *workers)
		}
		if *table == 0 || *table == 2 {
			tableII(params, *workers)
		}
		if *table == 0 || *table == 3 {
			tableIII(params)
		}
		if *table == 0 || *table == 4 {
			tableIV()
		}
	}

	if *benchOut != "" {
		data, err := json.MarshalIndent(benchDoc, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
	}
}

func tableI(params []chip.GenParams, workers int) {
	fmt.Println("=== Table I: full flows (ISR vs BR+cleanup) ===")
	var rows []report.Metrics
	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[table I] %s (%d nets requested)...\n", p.Name, p.NumNets)
		opt := core.Options{Workers: workers, Seed: p.Seed, Tracer: tracer}

		isr := core.RouteBaseline(runCtx, chip.Generate(p), opt)
		isr.Metrics.Name = p.Name + "/ISR"
		rows = append(rows, isr.Metrics)
		collectFlow(isr, "pi_H")

		br := core.RouteBonnRoute(runCtx, chip.Generate(p), opt)
		br.Metrics.Name = p.Name + "/BR+cleanup"
		rows = append(rows, br.Metrics)
		collectFlow(br, "pi_H")

		// The same flow under the reduced-graph future cost: the
		// search-effort comparison (heap pops / labels) against the
		// pi_H row above is the benchmark for the stronger bound.
		optR := opt
		optR.FutureMode = detail.FutureReduced
		brR := core.RouteBonnRoute(runCtx, chip.Generate(p), optR)
		brR.Metrics.Name = p.Name + "/BR+cleanup-piR"
		rows = append(rows, brR.Metrics)
		collectFlow(brR, "pi_R")
	}
	fmt.Print(report.FormatTableI(rows))
	fmt.Println()
}

// collectFlow records one flow run into the -bench-json document.
func collectFlow(res *core.Result, pi string) {
	if collect == nil {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	fj := flowJSON{
		Name:      res.Metrics.Name,
		Pi:        pi,
		DetailMS:  ms(res.DetailTime),
		CleanupMS: ms(res.CleanupTime),
		TotalMS:   ms(res.Metrics.Runtime),
		Netlength: res.Metrics.Netlength,
		Vias:      res.Metrics.Vias,
		Scenic25:  res.Metrics.Scenic25,
		Scenic50:  res.Metrics.Scenic50,
		Errors:    res.Metrics.Errors,
		Unrouted:  res.Metrics.Unrouted,
	}
	if res.Global != nil {
		fj.GlobalMS = ms(res.Global.Total)
	}
	if res.Router != nil {
		st := res.Router.SearchStats()
		fj.SearchStats = &statsJSON{
			Labels: st.Labels, HeapPops: st.HeapPops, Expanded: st.Expanded,
			Intervals: st.Intervals, Searches: st.Searches, PiReused: st.PiReused,
		}
	}
	collect.Flows = append(collect.Flows, fj)
}

func tableII(params []chip.GenParams, workers int) {
	fmt.Println("=== Table II: BR-global netlength over Steiner length by terminal count ===")
	agg := make([]report.TerminalClassRow, 6)
	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[table II] %s...\n", p.Name)
		c := chip.Generate(p)
		res := core.RouteBonnRoute(runCtx, c, core.Options{Workers: workers, Seed: p.Seed, SkipGlobal: false, Tracer: tracer})
		if res.Global == nil {
			continue
		}
		perNet := make([]report.NetLength, len(c.Nets))
		for ni := range c.Nets {
			perNet[ni] = report.NetLength{
				Length: res.Global.PerNetLength[ni],
				Routed: res.Global.PerNetLength[ni] > 0,
			}
		}
		// Steiner baselines on the tile-grid metric (global routes run
		// tile-center to tile-center).
		g := core.BuildGlobalGraph(c, 8)
		baselines := report.SteinerBaselinesAt(c, func(pi int) geom.Point {
			tx, ty := g.TileOf(c.Pins[pi].Center())
			return g.TileRect(tx, ty).Center()
		})
		rows := report.TableII(c, perNet, baselines)
		for i := range rows {
			if agg[i].Label == "" {
				agg[i].Label = rows[i].Label
			}
			agg[i].Netlength += rows[i].Netlength
			agg[i].Steiner += rows[i].Steiner
		}
	}
	fmt.Print(report.FormatTableII(agg))
	fmt.Println()
}

func tableIII(params []chip.GenParams) {
	fmt.Println("=== Table III: global routing (BR-global vs ISR-global) ===")
	var rows []report.GlobalMetrics
	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[table III] %s...\n", p.Name)
		c := chip.Generate(p)
		r := detail.New(c, detail.Options{})
		g := core.BuildGlobalGraph(c, 8)
		capest.Compute(c, r.TG, g, capest.Params{})
		capest.ReduceForIntraTile(c, g)

		var steinerLen int64
		for _, b := range report.SteinerBaselinesAt(c, func(pi int) geom.Point {
			tx, ty := g.TileOf(c.Pins[pi].Center())
			return g.TileRect(tx, ty).Center()
		}) {
			steinerLen += b
		}

		// BR-global.
		start := time.Now()
		solver := sharing.New(g, core.NetSpecs(c, g), sharing.Options{Phases: 32, Seed: p.Seed})
		sres := solver.Run(runCtx)
		brTotal := time.Since(start)
		var brLen int64
		brVias := 0
		over := 0
		loads := solver.EdgeLoads(sres)
		for e, l := range loads {
			if l > g.Cap[e]+1e-9 {
				over++
			}
		}
		for ni := range sres.Nets {
			t := sres.Nets[ni].Tree()
			edges := make([]int, len(t))
			for i, e := range t {
				edges[i] = int(e)
			}
			brLen += steiner.TreeLength(g, edges)
			brVias += steiner.CountVias(g, edges)
		}
		rows = append(rows, report.GlobalMetrics{
			Name:    p.Name + "/BR-glob",
			Runtime: brTotal, AlgTime: sres.AlgTime, RRTime: sres.RepairTime,
			Netlength: brLen, Steiner: steinerLen, Vias: brVias, OverloadedE: over,
		})

		// ISR-global.
		var gnets []baseline.GNet
		for _, spec := range core.NetSpecs(c, g) {
			gnets = append(gnets, baseline.GNet{ID: spec.ID, Terminals: spec.Terminals, Width: spec.Width})
		}
		gres := baseline.GlobalRoute(runCtx, g, gnets, baseline.GlobalOptions{})
		var isrLen int64
		isrVias := 0
		for _, t := range gres.Trees {
			edges := make([]int, len(t))
			for i, e := range t {
				edges[i] = int(e)
			}
			isrLen += steiner.TreeLength(g, edges)
			isrVias += steiner.CountVias(g, edges)
		}
		rows = append(rows, report.GlobalMetrics{
			Name:    p.Name + "/ISR-glob",
			Runtime: gres.Runtime, Netlength: isrLen, Steiner: steinerLen,
			Vias: isrVias, OverloadedE: gres.Overflowed,
		})
	}
	fmt.Print(report.FormatTableIII(rows))
}

// searchWorld is the micro-benchmark scenario (the same long straight
// connection the test harness's BenchmarkIntervalVsNode uses): 4 layers,
// 8000 DBU, pitch-40 tracks, free space, π_H toward the target.
func searchWorld() (*pathsearch.Config, []geom.Point3, []geom.Point3) {
	size := 8000
	nLayers := 4
	dirs := make([]geom.Direction, nLayers)
	coords := make([][]int, nLayers)
	for z := 0; z < nLayers; z++ {
		if z%2 == 0 {
			dirs[z] = geom.Horizontal
		} else {
			dirs[z] = geom.Vertical
		}
		for c := 20; c < size; c += 40 {
			coords[z] = append(coords[z], c)
		}
	}
	tg := tracks.BuildGraph(geom.R(0, 0, size, size), dirs, coords)
	costs := pathsearch.UniformCosts(nLayers, 3, 160)
	cfg := &pathsearch.Config{
		Tracks: tg,
		Costs:  costs,
		Pi: pathsearch.NewHFuture(nLayers, costs,
			map[int][]geom.Rect{0: {geom.R(7780, 20, 7781, 21)}}),
		WireRuns: func(z, ti, lo, hi int, visit func(lo, hi int, need drc.Need)) {},
		JogNeed:  func(z, lowerTi, along int) drc.Need { return 0 },
		ViaNeed:  func(v, botTi, topTi int, pos geom.Point) drc.Need { return 0 },
	}
	S := []geom.Point3{geom.Pt3(20, 20, 0)}
	T := []geom.Point3{geom.Pt3(7780, 20, 0)}
	return cfg, S, T
}

// tableIV runs the path-search engine micro-benchmarks: pooled one-shot
// calls, the steady-state engine (the router-worker regime), the heap
// fallback (isolating the bucket-queue win), and the node-labelling
// reference.
func tableIV() {
	fmt.Println("=== Path-search engine micro-benchmarks ===")
	cfg, S, T := searchWorld()
	heapCfg := *cfg
	heapCfg.ForceHeapQueue = true

	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		fmt.Printf("%-28s %10d ns/op %10d B/op %8d allocs/op\n",
			name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		if collect != nil {
			collect.PathSearch = append(collect.PathSearch, benchRowJSON{
				Name:        name,
				NsPerOp:     float64(r.NsPerOp()),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
		}
	}

	run("Interval/pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pathsearch.Search(cfg, S, T) == nil {
				b.Fatal("no path")
			}
		}
	})
	run("Interval/steady", func(b *testing.B) {
		e := pathsearch.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if e.Search(cfg, S, T) == nil {
				b.Fatal("no path")
			}
		}
	})
	run("Interval/steady-heapq", func(b *testing.B) {
		e := pathsearch.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if e.Search(&heapCfg, S, T) == nil {
				b.Fatal("no path")
			}
		}
	})
	run("Node/steady", func(b *testing.B) {
		e := pathsearch.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if e.NodeSearch(cfg, S, T) == nil {
				b.Fatal("no path")
			}
		}
	})
	run("Future/reduced-build", func(b *testing.B) {
		// Construction cost of the reduced-graph future cost over the
		// same world (the price a cache miss pays before a search).
		nl := 4
		costs := pathsearch.UniformCosts(nl, 3, 160)
		dirs := make([]geom.Direction, nl)
		for z := range dirs {
			if z%2 == 0 {
				dirs[z] = geom.Horizontal
			} else {
				dirs[z] = geom.Vertical
			}
		}
		targets := map[int][]geom.Rect{0: {geom.R(7780, 20, 7781, 21)}}
		bounds := geom.R(0, 0, 8000, 8000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pathsearch.NewRFuture(nl, costs, targets, bounds,
				pathsearch.RFutureConfig{Cell: 160, Dirs: dirs})
		}
	})

	if collect != nil {
		// The same scenario measured at the pre-engine seed commit (per-
		// call allocation of heaps, maps, and label slices), kept for the
		// speedup/allocation comparison.
		collect.SeedRef = "c92c32d"
		collect.SeedBaseline = []benchRowJSON{
			{Name: "Interval/percall", NsPerOp: 170915, BytesPerOp: 75307, AllocsPerOp: 1233},
			{Name: "Node/percall", NsPerOp: 410709, BytesPerOp: 240331, AllocsPerOp: 2592},
		}
	}
}
