// Command routebench regenerates the paper's evaluation tables on a
// suite of synthetic chips: Table I (ISR vs BR+cleanup full flows),
// Table II (global routing netlength over Steiner length by terminal
// count), and Table III (BR-global vs ISR-global).
//
// Usage:
//
//	routebench [-table 0|1|2|3] [-suite small|medium|large] [-workers N]
//
// -table 0 (default) prints all three tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bonnroute/internal/baseline"
	"bonnroute/internal/capest"
	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/geom"
	"bonnroute/internal/report"
	"bonnroute/internal/sharing"
	"bonnroute/internal/steiner"
)

// suite returns the chip parameter sets standing in for the paper's
// eight IBM designs (scaled to laptop size; three tiers).
func suite(name string) []chip.GenParams {
	switch name {
	case "small":
		return []chip.GenParams{
			{Name: "chip1", Seed: 11, Rows: 6, Cols: 16, NumNets: 60, NumLayers: 4, LocalityRadius: 6, PowerStripePeriod: 6},
			{Name: "chip2", Seed: 12, Rows: 6, Cols: 16, NumNets: 60, NumLayers: 6, LocalityRadius: 10, PowerStripePeriod: 4},
		}
	case "large":
		return []chip.GenParams{
			{Name: "chip1", Seed: 11, Rows: 10, Cols: 32, NumNets: 260, NumLayers: 4, LocalityRadius: 8, PowerStripePeriod: 6},
			{Name: "chip2", Seed: 12, Rows: 10, Cols: 32, NumNets: 260, NumLayers: 6, LocalityRadius: 14, PowerStripePeriod: 4},
			{Name: "chip3", Seed: 13, Rows: 12, Cols: 40, NumNets: 420, NumLayers: 6, LocalityRadius: 10, PowerStripePeriod: 8},
			{Name: "chip4", Seed: 14, Rows: 12, Cols: 48, NumNets: 520, NumLayers: 6, LocalityRadius: 20, PowerStripePeriod: 8},
		}
	default: // medium
		return []chip.GenParams{
			{Name: "chip1", Seed: 11, Rows: 8, Cols: 24, NumNets: 140, NumLayers: 4, LocalityRadius: 6, PowerStripePeriod: 6},
			{Name: "chip2", Seed: 12, Rows: 8, Cols: 24, NumNets: 140, NumLayers: 6, LocalityRadius: 12, PowerStripePeriod: 4},
			{Name: "chip3", Seed: 13, Rows: 10, Cols: 32, NumNets: 240, NumLayers: 6, LocalityRadius: 8, PowerStripePeriod: 8},
		}
	}
}

func main() {
	var (
		table     = flag.Int("table", 0, "which table to print (0 = all)")
		suiteName = flag.String("suite", "medium", "small, medium, or large")
		workers   = flag.Int("workers", 1, "parallel workers")
	)
	flag.Parse()

	params := suite(*suiteName)
	if *table == 0 || *table == 1 {
		tableI(params, *workers)
	}
	if *table == 0 || *table == 2 {
		tableII(params, *workers)
	}
	if *table == 0 || *table == 3 {
		tableIII(params)
	}
}

func tableI(params []chip.GenParams, workers int) {
	fmt.Println("=== Table I: full flows (ISR vs BR+cleanup) ===")
	var rows []report.Metrics
	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[table I] %s (%d nets requested)...\n", p.Name, p.NumNets)
		opt := core.Options{Workers: workers, Seed: p.Seed}

		isr := core.RouteBaseline(chip.Generate(p), opt)
		isr.Metrics.Name = p.Name + "/ISR"
		rows = append(rows, isr.Metrics)

		br := core.RouteBonnRoute(chip.Generate(p), opt)
		br.Metrics.Name = p.Name + "/BR+cleanup"
		rows = append(rows, br.Metrics)
	}
	fmt.Print(report.FormatTableI(rows))
	fmt.Println()
}

func tableII(params []chip.GenParams, workers int) {
	fmt.Println("=== Table II: BR-global netlength over Steiner length by terminal count ===")
	agg := make([]report.TerminalClassRow, 6)
	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[table II] %s...\n", p.Name)
		c := chip.Generate(p)
		res := core.RouteBonnRoute(c, core.Options{Workers: workers, Seed: p.Seed, SkipGlobal: false})
		if res.Global == nil {
			continue
		}
		perNet := make([]report.NetLength, len(c.Nets))
		for ni := range c.Nets {
			perNet[ni] = report.NetLength{
				Length: res.Global.PerNetLength[ni],
				Routed: res.Global.PerNetLength[ni] > 0,
			}
		}
		// Steiner baselines on the tile-grid metric (global routes run
		// tile-center to tile-center).
		g := core.BuildGlobalGraph(c, 8)
		baselines := report.SteinerBaselinesAt(c, func(pi int) geom.Point {
			tx, ty := g.TileOf(c.Pins[pi].Center())
			return g.TileRect(tx, ty).Center()
		})
		rows := report.TableII(c, perNet, baselines)
		for i := range rows {
			if agg[i].Label == "" {
				agg[i].Label = rows[i].Label
			}
			agg[i].Netlength += rows[i].Netlength
			agg[i].Steiner += rows[i].Steiner
		}
	}
	fmt.Print(report.FormatTableII(agg))
	fmt.Println()
}

func tableIII(params []chip.GenParams) {
	fmt.Println("=== Table III: global routing (BR-global vs ISR-global) ===")
	var rows []report.GlobalMetrics
	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[table III] %s...\n", p.Name)
		c := chip.Generate(p)
		r := detail.New(c, detail.Options{})
		g := core.BuildGlobalGraph(c, 8)
		capest.Compute(c, r.TG, g, capest.Params{})
		capest.ReduceForIntraTile(c, g)

		var steinerLen int64
		for _, b := range report.SteinerBaselinesAt(c, func(pi int) geom.Point {
			tx, ty := g.TileOf(c.Pins[pi].Center())
			return g.TileRect(tx, ty).Center()
		}) {
			steinerLen += b
		}

		// BR-global.
		start := time.Now()
		solver := sharing.New(g, core.NetSpecs(c, g), sharing.Options{Phases: 32, Seed: p.Seed})
		sres := solver.Run()
		brTotal := time.Since(start)
		var brLen int64
		brVias := 0
		over := 0
		loads := solver.EdgeLoads(sres)
		for e, l := range loads {
			if l > g.Cap[e]+1e-9 {
				over++
			}
		}
		for ni := range sres.Nets {
			t := sres.Nets[ni].Tree()
			edges := make([]int, len(t))
			for i, e := range t {
				edges[i] = int(e)
			}
			brLen += steiner.TreeLength(g, edges)
			brVias += steiner.CountVias(g, edges)
		}
		rows = append(rows, report.GlobalMetrics{
			Name:    p.Name + "/BR-glob",
			Runtime: brTotal, AlgTime: sres.AlgTime, RRTime: sres.RepairTime,
			Netlength: brLen, Steiner: steinerLen, Vias: brVias, OverloadedE: over,
		})

		// ISR-global.
		var gnets []baseline.GNet
		for _, spec := range core.NetSpecs(c, g) {
			gnets = append(gnets, baseline.GNet{ID: spec.ID, Terminals: spec.Terminals, Width: spec.Width})
		}
		gres := baseline.GlobalRoute(g, gnets, baseline.GlobalOptions{})
		var isrLen int64
		isrVias := 0
		for _, t := range gres.Trees {
			edges := make([]int, len(t))
			for i, e := range t {
				edges[i] = int(e)
			}
			isrLen += steiner.TreeLength(g, edges)
			isrVias += steiner.CountVias(g, edges)
		}
		rows = append(rows, report.GlobalMetrics{
			Name:    p.Name + "/ISR-glob",
			Runtime: gres.Runtime, Netlength: isrLen, Steiner: steinerLen,
			Vias: isrVias, OverloadedE: gres.Overflowed,
		})
	}
	fmt.Print(report.FormatTableIII(rows))
}
