package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/pathsearch"
)

// modelNote labels the two speedup columns of the scaling artifact.
// measured_speedup is real: every worker count runs at
// GOMAXPROCS=min(workers, num_cpu) (one warmup, then median of
// -sweep-runs measured runs) on the host recorded in host_cpu/num_cpu,
// so on a multicore host it reflects genuine concurrency — and on a
// single-core host it is honestly flat (the scheduler degenerates to
// the inline serial loop). modeled_speedup is the machine-independent
// claim:
// LPT-scheduling the Workers=1 run's per-task durations onto W workers
// (parallel and cluster rounds) plus the serial rounds' wall time. The
// two columns agree when num_cpu >= workers; the model is what a wider
// machine would measure.
const modelNote = "measured_speedup = median detail_ms(workers=1) / median detail_ms(workers=W) " +
	"at GOMAXPROCS=min(W, num_cpu) on host_cpu; modeled_speedup = detail critical path from " +
	"LPT-scheduling the Workers=1 run's per-task durations onto W workers (machine-independent; " +
	"tracks measured when num_cpu >= W)"

// sweepRowJSON is one worker count's run of one chip.
type sweepRowJSON struct {
	Workers int `json:"workers"`
	// GoMaxProcs is the runtime.GOMAXPROCS the row's runs executed
	// under — always equal to Workers in this sweep.
	GoMaxProcs int `json:"gomaxprocs"`
	// DetailMS is the measured detail-stage wall time: one warmup run,
	// then the median of the measured runs.
	DetailMS float64 `json:"detail_ms"`
	// MeasuredSpeedup is DetailMS(workers=1) / DetailMS(this row) —
	// real wall-clock scaling on the recorded host.
	MeasuredSpeedup float64 `json:"measured_speedup"`
	// ModeledDetailMS / ModeledSpeedup: see modelNote.
	ModeledDetailMS float64 `json:"modeled_detail_ms"`
	ModeledSpeedup  float64 `json:"modeled_speedup"`
	// Scheduler observability, summed over the parallel/cluster rounds
	// of the row's last measured run: region tasks executed, tasks run
	// by a non-preferred worker, and summed worker idle time at round
	// barriers. Steals and idle depend on real durations and may vary
	// between runs; results never do.
	Tasks  int     `json:"tasks"`
	Steals int     `json:"steals"`
	IdleMS float64 `json:"idle_ms"`
	// Quality fields — identical for every worker count by construction;
	// the sweep aborts if they drift.
	Routed    int   `json:"routed"`
	Netlength int64 `json:"netlength"`
	Vias      int   `json:"vias"`
	Errors    int   `json:"errors"`
	Unrouted  int   `json:"unrouted"`
	Ripups    int   `json:"ripups"`
}

// sweepChipJSON is one chip's sweep.
type sweepChipJSON struct {
	Name string `json:"name"`
	// ParallelRounds / StripTasks / ParallelNets describe how much of the
	// flow actually ran under region partitioning (guards against a
	// sweep that "scales" because nothing was parallel).
	ParallelRounds int            `json:"parallel_rounds"`
	StripTasks     int            `json:"strip_tasks"`
	ParallelNets   int            `json:"parallel_nets"`
	Rows           []sweepRowJSON `json:"rows"`
}

// parallelJSON is the -workers-sweep -bench-json document
// (BENCH_parallel.json).
type parallelJSON struct {
	Suite string `json:"suite"`
	// HostCPU / NumCPU identify the machine the measured columns come
	// from (model name from /proc/cpuinfo, logical CPU count).
	HostCPU string `json:"host_cpu"`
	NumCPU  int    `json:"num_cpu"`
	// RunsPerCount is how many measured runs back each row's median
	// (after one untimed warmup run).
	RunsPerCount int             `json:"runs_per_count"`
	Model        string          `json:"model"`
	Chips        []sweepChipJSON `json:"chips"`
	// SteadyAllocsPerOp re-measures the Interval/steady micro-benchmark
	// so the artifact carries the path-search allocation budget alongside
	// the scaling rows.
	SteadyAllocsPerOp int64 `json:"pathsearch_steady_allocs_per_op"`
}

// hostCPU returns the machine's CPU model name (linux /proc/cpuinfo),
// falling back to the architecture string.
func hostCPU() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if k, v, ok := strings.Cut(line, ":"); ok &&
				strings.TrimSpace(k) == "model name" {
				return strings.TrimSpace(v)
			}
		}
	}
	return runtime.GOARCH
}

// parseWorkerCounts parses the -workers-sweep argument. The sweep models
// and normalizes from the Workers=1 run, so 1 must come first.
func parseWorkerCounts(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 || counts[0] != 1 {
		return nil, fmt.Errorf("worker counts must start with 1 (the modeling baseline), got %v", counts)
	}
	return counts, nil
}

// lptMakespan schedules task durations onto w workers greedily by
// longest-processing-time-first and returns the makespan — the modeled
// wall time of one parallel round at that worker count.
func lptMakespan(tasks []time.Duration, w int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	sorted := append([]time.Duration(nil), tasks...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	loads := make([]time.Duration, w)
	for _, d := range sorted {
		mi := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var makespan time.Duration
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return makespan
}

// isParallelRound reports whether a round ran region tasks on the
// work-stealing scheduler (strip rounds and the whole-chip cluster
// round) as opposed to the serial prepass/cleanup/retry rounds.
func isParallelRound(kind string) bool {
	return kind == "parallel" || kind == "cluster"
}

// modelDetail computes the modeled detail-stage critical path at w
// workers from a reference run's round details.
func modelDetail(rounds []detail.RoundStats, w int) time.Duration {
	var total time.Duration
	for _, rd := range rounds {
		if isParallelRound(rd.Kind) {
			total += lptMakespan(rd.StripTime, w)
		} else {
			total += rd.Elapsed
		}
	}
	return total
}

// medianDuration returns the median of ds (mean of the middle two for
// even counts).
func medianDuration(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// workersSweep measures every suite chip at each worker count — real
// wall clock at GOMAXPROCS=workers, one warmup then the median of
// `runs` measured runs — asserts the quality fields are bit-identical
// across counts and runs, and returns the scaling document.
func workersSweep(suiteName string, params []chip.GenParams, counts []int, runs int) *parallelJSON {
	if runs < 1 {
		runs = 1
	}
	doc := &parallelJSON{
		Suite:        suiteName,
		HostCPU:      hostCPU(),
		NumCPU:       runtime.NumCPU(),
		RunsPerCount: runs,
		Model:        modelNote,
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	fmt.Println("=== Workers sweep: detail-stage scaling ===")
	fmt.Printf("host: %s (%d logical CPUs), %d measured runs per count\n\n", doc.HostCPU, doc.NumCPU, runs)
	for _, p := range params {
		cd := sweepChipJSON{Name: p.Name}
		var refRounds []detail.RoundStats
		var refRow sweepRowJSON
		rows := make([]sweepRowJSON, len(counts))
		times := make([][]time.Duration, len(counts))
		// Worker counts are interleaved round-robin — warmup pass first,
		// then each measured repetition runs every count once — so a slow
		// period on a shared host lands on every count about equally
		// instead of biasing whichever count ran during it. Every run's
		// quality fields must match the Workers=1 baseline — the
		// determinism contract.
		for rep := 0; rep <= runs; rep++ {
			for ci, w := range counts {
				// GOMAXPROCS follows the worker count onto real cores and
				// stops at the host's CPU count: raising it past num_cpu
				// only adds kernel timeslicing between threads that cannot
				// run concurrently anyway (the row records what ran).
				runtime.GOMAXPROCS(min(w, runtime.NumCPU()))
				// Level the allocator between runs: without this, garbage
				// from earlier runs inflates GC cost monotonically across
				// the sweep and skews later rows slow.
				runtime.GC()
				fmt.Fprintf(os.Stderr, "[sweep] %s workers=%d run %d/%d...\n", p.Name, w, rep, runs)
				res := core.RouteBonnRoute(runCtx, chip.Generate(p),
					core.Options{Workers: w, Seed: p.Seed, Tracer: tracer})
				row := sweepRowJSON{
					Workers:    w,
					GoMaxProcs: runtime.GOMAXPROCS(0),
					Routed:     res.Detail.Routed,
					Netlength:  res.Metrics.Netlength,
					Vias:       res.Metrics.Vias,
					Errors:     res.Metrics.Errors,
					Unrouted:   res.Metrics.Unrouted,
					Ripups:     res.Detail.RipupEvents,
				}
				for _, rd := range res.Detail.RoundDetails {
					if isParallelRound(rd.Kind) {
						row.Tasks += rd.Sched.Tasks
						row.Steals += rd.Sched.Steals
						row.IdleMS += float64(rd.Sched.Idle.Microseconds()) / 1000
					}
				}
				if rep > 0 {
					times[ci] = append(times[ci], res.DetailTime)
				}
				if w == 1 {
					// The last (warmed) run's per-task durations feed the
					// LPT model; the cold warmup run would inflate it.
					refRounds = res.Detail.RoundDetails
				}
				if ci == 0 && rep == 0 {
					refRow = row
				} else if !sameQuality(row, refRow) {
					fmt.Fprintf(os.Stderr,
						"sweep: %s Workers=%d broke determinism:\n  got  %+v\n  want %+v\n",
						p.Name, w, row, refRow)
					os.Exit(1)
				}
				rows[ci] = row
			}
		}
		for _, rd := range refRounds {
			if isParallelRound(rd.Kind) {
				cd.ParallelRounds++
				cd.StripTasks += len(rd.StripTime)
				cd.ParallelNets += rd.Nets
			}
		}
		for ci, w := range counts {
			row := rows[ci]
			row.DetailMS = float64(medianDuration(times[ci]).Microseconds()) / 1000
			modeled := modelDetail(refRounds, w)
			row.ModeledDetailMS = float64(modeled.Microseconds()) / 1000
			if modeled > 0 {
				row.ModeledSpeedup = float64(modelDetail(refRounds, 1)) / float64(modeled)
			}
			if len(cd.Rows) > 0 && row.DetailMS > 0 {
				row.MeasuredSpeedup = cd.Rows[0].DetailMS / row.DetailMS
			} else if row.DetailMS > 0 {
				row.MeasuredSpeedup = 1
			}
			cd.Rows = append(cd.Rows, row)
		}
		if cd.ParallelNets == 0 {
			fmt.Fprintf(os.Stderr, "sweep: %s routed no nets in parallel rounds; scaling rows would be vacuous\n", p.Name)
			os.Exit(1)
		}
		printSweepChip(cd)
		doc.Chips = append(doc.Chips, cd)
	}
	runtime.GOMAXPROCS(prevProcs)

	r := testing.Benchmark(func(b *testing.B) {
		cfg, S, T := searchWorld()
		e := pathsearch.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if e.Search(cfg, S, T) == nil {
				b.Fatal("no path")
			}
		}
	})
	doc.SteadyAllocsPerOp = r.AllocsPerOp()
	fmt.Printf("Interval/steady: %d allocs/op\n", doc.SteadyAllocsPerOp)
	return doc
}

// sameQuality compares the result-quality fields of two sweep rows —
// the fields the determinism contract covers; timings and scheduler
// observability are excluded.
func sameQuality(a, b sweepRowJSON) bool {
	return a.Routed == b.Routed && a.Netlength == b.Netlength &&
		a.Vias == b.Vias && a.Errors == b.Errors &&
		a.Unrouted == b.Unrouted && a.Ripups == b.Ripups
}

func printSweepChip(cd sweepChipJSON) {
	fmt.Printf("%s: %d parallel rounds, %d region tasks, %d nets routed in regions\n",
		cd.Name, cd.ParallelRounds, cd.StripTasks, cd.ParallelNets)
	fmt.Printf("%8s %10s %11s %9s %11s %9s %7s %10s %6s %7s\n",
		"workers", "gomaxprocs", "detail_ms", "measured", "modeled_ms", "modeled", "steals", "netlength", "vias", "errors")
	for _, r := range cd.Rows {
		fmt.Printf("%8d %10d %11.1f %8.2fx %11.1f %8.2fx %7d %10d %6d %7d\n",
			r.Workers, r.GoMaxProcs, r.DetailMS, r.MeasuredSpeedup,
			r.ModeledDetailMS, r.ModeledSpeedup, r.Steals,
			r.Netlength, r.Vias, r.Errors)
	}
	fmt.Println()
}

// diffParallel compares the sweep's quality fields against a committed
// BENCH_parallel.json. Timing fields are machine-dependent and excluded;
// a quality drift means routing results changed and the artifact (or
// the regression) needs attention. Returns an error listing drifts.
func diffParallel(doc *parallelJSON, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want parallelJSON
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	wantChips := map[string]sweepChipJSON{}
	for _, c := range want.Chips {
		wantChips[c.Name] = c
	}
	var drifts []string
	for _, got := range doc.Chips {
		wc, ok := wantChips[got.Name]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("%s: not in %s", got.Name, path))
			continue
		}
		wantRows := map[int]sweepRowJSON{}
		for _, r := range wc.Rows {
			wantRows[r.Workers] = r
		}
		for _, gr := range got.Rows {
			wr, ok := wantRows[gr.Workers]
			if !ok {
				drifts = append(drifts, fmt.Sprintf("%s workers=%d: not in %s", got.Name, gr.Workers, path))
				continue
			}
			if !sameQuality(gr, wr) {
				drifts = append(drifts, fmt.Sprintf(
					"%s workers=%d: quality drift\n  got  routed=%d netlength=%d vias=%d errors=%d unrouted=%d ripups=%d\n  want routed=%d netlength=%d vias=%d errors=%d unrouted=%d ripups=%d",
					got.Name, gr.Workers,
					gr.Routed, gr.Netlength, gr.Vias, gr.Errors, gr.Unrouted, gr.Ripups,
					wr.Routed, wr.Netlength, wr.Vias, wr.Errors, wr.Unrouted, wr.Ripups))
			}
		}
	}
	if len(drifts) > 0 {
		return fmt.Errorf("quality drift against %s:\n%s", path, strings.Join(drifts, "\n"))
	}
	return nil
}
