package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/pathsearch"
)

// modelNote is the honest label on the scaling artifact: this container
// runs GOMAXPROCS=1, so measured wall time cannot exhibit real
// concurrency. The strip schedule and per-strip task durations are the
// same for every worker count (the result is bit-identical by the
// determinism contract), so the modeled critical path — LPT-scheduling
// the Workers=1 run's per-strip task durations onto W workers, plus the
// serial rounds' wall time — is the scaling claim; detail_ms is the
// measured wall time and is expected to be flat on one CPU.
const modelNote = "modeled_detail_ms = LPT critical path of the Workers=1 run's per-strip task " +
	"durations (parallel rounds) + serial-round wall time; measured detail_ms is flat because " +
	"GOMAXPROCS=1 serializes the strip tasks"

// sweepRowJSON is one worker count's run of one chip.
type sweepRowJSON struct {
	Workers int `json:"workers"`
	// DetailMS is the measured detail-stage wall time.
	DetailMS float64 `json:"detail_ms"`
	// ModeledDetailMS / ModeledSpeedup: see modelNote.
	ModeledDetailMS float64 `json:"modeled_detail_ms"`
	ModeledSpeedup  float64 `json:"modeled_speedup"`
	// Quality fields — identical for every worker count by construction;
	// the sweep aborts if they drift.
	Routed    int   `json:"routed"`
	Netlength int64 `json:"netlength"`
	Vias      int   `json:"vias"`
	Errors    int   `json:"errors"`
	Unrouted  int   `json:"unrouted"`
	Ripups    int   `json:"ripups"`
}

// sweepChipJSON is one chip's sweep.
type sweepChipJSON struct {
	Name string `json:"name"`
	// ParallelRounds / StripTasks / ParallelNets describe how much of the
	// flow actually ran under region partitioning (guards against a
	// sweep that "scales" because nothing was parallel).
	ParallelRounds int            `json:"parallel_rounds"`
	StripTasks     int            `json:"strip_tasks"`
	ParallelNets   int            `json:"parallel_nets"`
	Rows           []sweepRowJSON `json:"rows"`
}

// parallelJSON is the -workers-sweep -bench-json document
// (BENCH_parallel.json).
type parallelJSON struct {
	Suite      string          `json:"suite"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Model      string          `json:"model"`
	Chips      []sweepChipJSON `json:"chips"`
	// SteadyAllocsPerOp re-measures the Interval/steady micro-benchmark
	// so the artifact carries the path-search allocation budget alongside
	// the scaling rows.
	SteadyAllocsPerOp int64 `json:"pathsearch_steady_allocs_per_op"`
}

// parseWorkerCounts parses the -workers-sweep argument. The sweep models
// from the Workers=1 run, so 1 must come first.
func parseWorkerCounts(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 || counts[0] != 1 {
		return nil, fmt.Errorf("worker counts must start with 1 (the modeling baseline), got %v", counts)
	}
	return counts, nil
}

// lptMakespan schedules task durations onto w workers greedily by
// longest-processing-time-first and returns the makespan — the modeled
// wall time of one parallel round at that worker count.
func lptMakespan(tasks []time.Duration, w int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	sorted := append([]time.Duration(nil), tasks...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	loads := make([]time.Duration, w)
	for _, d := range sorted {
		mi := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var makespan time.Duration
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return makespan
}

// modelDetail computes the modeled detail-stage critical path at w
// workers from a reference run's round details.
func modelDetail(rounds []detail.RoundStats, w int) time.Duration {
	var total time.Duration
	for _, rd := range rounds {
		if rd.Kind == "parallel" {
			total += lptMakespan(rd.StripTime, w)
		} else {
			total += rd.Elapsed
		}
	}
	return total
}

// workersSweep runs every suite chip at each worker count, asserts the
// quality fields are bit-identical across counts, and returns the
// scaling document.
func workersSweep(suiteName string, params []chip.GenParams, counts []int) *parallelJSON {
	doc := &parallelJSON{
		Suite:      suiteName,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Model:      modelNote,
	}
	fmt.Println("=== Workers sweep: detail-stage scaling ===")
	for _, p := range params {
		cd := sweepChipJSON{Name: p.Name}
		var refRounds []detail.RoundStats
		var refRow sweepRowJSON
		for _, w := range counts {
			fmt.Fprintf(os.Stderr, "[sweep] %s workers=%d...\n", p.Name, w)
			res := core.RouteBonnRoute(runCtx, chip.Generate(p),
				core.Options{Workers: w, Seed: p.Seed, Tracer: tracer})
			row := sweepRowJSON{
				Workers:   w,
				DetailMS:  float64(res.DetailTime.Microseconds()) / 1000,
				Routed:    res.Detail.Routed,
				Netlength: res.Metrics.Netlength,
				Vias:      res.Metrics.Vias,
				Errors:    res.Metrics.Errors,
				Unrouted:  res.Metrics.Unrouted,
				Ripups:    res.Detail.RipupEvents,
			}
			if w == 1 {
				refRounds = res.Detail.RoundDetails
				refRow = row
				for _, rd := range refRounds {
					if rd.Kind == "parallel" {
						cd.ParallelRounds++
						cd.StripTasks += len(rd.StripTime)
						cd.ParallelNets += rd.Nets
					}
				}
			} else if !sameQuality(row, refRow) {
				fmt.Fprintf(os.Stderr,
					"sweep: %s Workers=%d broke determinism:\n  got  %+v\n  want %+v\n",
					p.Name, w, row, refRow)
				os.Exit(1)
			}
			modeled := modelDetail(refRounds, w)
			row.ModeledDetailMS = float64(modeled.Microseconds()) / 1000
			if modeled > 0 {
				row.ModeledSpeedup = float64(modelDetail(refRounds, 1)) / float64(modeled)
			}
			cd.Rows = append(cd.Rows, row)
		}
		if cd.ParallelNets == 0 {
			fmt.Fprintf(os.Stderr, "sweep: %s routed no nets in parallel rounds; scaling rows would be vacuous\n", p.Name)
			os.Exit(1)
		}
		printSweepChip(cd)
		doc.Chips = append(doc.Chips, cd)
	}

	r := testing.Benchmark(func(b *testing.B) {
		cfg, S, T := searchWorld()
		e := pathsearch.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if e.Search(cfg, S, T) == nil {
				b.Fatal("no path")
			}
		}
	})
	doc.SteadyAllocsPerOp = r.AllocsPerOp()
	fmt.Printf("Interval/steady: %d allocs/op\n", doc.SteadyAllocsPerOp)
	return doc
}

// sameQuality compares the result-quality fields of two sweep rows —
// the fields the determinism contract covers; timings are excluded.
func sameQuality(a, b sweepRowJSON) bool {
	return a.Routed == b.Routed && a.Netlength == b.Netlength &&
		a.Vias == b.Vias && a.Errors == b.Errors &&
		a.Unrouted == b.Unrouted && a.Ripups == b.Ripups
}

func printSweepChip(cd sweepChipJSON) {
	fmt.Printf("%s: %d parallel rounds, %d strip tasks, %d nets routed in strips\n",
		cd.Name, cd.ParallelRounds, cd.StripTasks, cd.ParallelNets)
	fmt.Printf("%8s %14s %18s %10s %10s %6s %7s %9s\n",
		"workers", "detail_ms", "modeled_detail_ms", "speedup", "netlength", "vias", "errors", "unrouted")
	for _, r := range cd.Rows {
		fmt.Printf("%8d %14.1f %18.1f %9.2fx %10d %6d %7d %9d\n",
			r.Workers, r.DetailMS, r.ModeledDetailMS, r.ModeledSpeedup,
			r.Netlength, r.Vias, r.Errors, r.Unrouted)
	}
	fmt.Println()
}

// diffParallel compares the sweep's quality fields against a committed
// BENCH_parallel.json. Timing fields are machine-dependent and excluded;
// a quality drift means routing results changed and the artifact (or
// the regression) needs attention. Returns an error listing drifts.
func diffParallel(doc *parallelJSON, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want parallelJSON
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	wantChips := map[string]sweepChipJSON{}
	for _, c := range want.Chips {
		wantChips[c.Name] = c
	}
	var drifts []string
	for _, got := range doc.Chips {
		wc, ok := wantChips[got.Name]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("%s: not in %s", got.Name, path))
			continue
		}
		wantRows := map[int]sweepRowJSON{}
		for _, r := range wc.Rows {
			wantRows[r.Workers] = r
		}
		for _, gr := range got.Rows {
			wr, ok := wantRows[gr.Workers]
			if !ok {
				drifts = append(drifts, fmt.Sprintf("%s workers=%d: not in %s", got.Name, gr.Workers, path))
				continue
			}
			if !sameQuality(gr, wr) {
				drifts = append(drifts, fmt.Sprintf(
					"%s workers=%d: quality drift\n  got  routed=%d netlength=%d vias=%d errors=%d unrouted=%d ripups=%d\n  want routed=%d netlength=%d vias=%d errors=%d unrouted=%d ripups=%d",
					got.Name, gr.Workers,
					gr.Routed, gr.Netlength, gr.Vias, gr.Errors, gr.Unrouted, gr.Ripups,
					wr.Routed, wr.Netlength, wr.Vias, wr.Errors, wr.Unrouted, wr.Ripups))
			}
		}
	}
	if len(drifts) > 0 {
		return fmt.Errorf("quality drift against %s:\n%s", path, strings.Join(drifts, "\n"))
	}
	return nil
}
