package main

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/verify"
)

// passJSON is one verifier pass in the scale artifact: how much work it
// did and how many findings it produced.
type passJSON struct {
	Checked    int `json:"checked"`
	Violations int `json:"violations"`
}

// verifyJSON is the full pass matrix of the scale run. Quadratic passes
// run sampled; the sampling parameters are recorded so the exact point
// and pair sets can be replayed.
type verifyJSON struct {
	OK                  bool     `json:"ok"`
	Conservation        passJSON `json:"conservation"`
	Spacing             passJSON `json:"spacing"`
	Connectivity        passJSON `json:"connectivity"`
	Capacity            passJSON `json:"capacity"`
	FastGrid            passJSON `json:"fastgrid"`
	SpacingSampled      bool     `json:"spacing_sampled"`
	SpacingSampleCap    int      `json:"spacing_sample_cap"`
	SpacingSampleSeed   int64    `json:"spacing_sample_seed"`
	FastGridStride      int      `json:"fastgrid_stride"`
	FastGridTrackStride int      `json:"fastgrid_track_stride"`
	VerifyMS            float64  `json:"verify_ms"`
	Findings            []string `json:"findings,omitempty"`
}

// structMemJSON is the deterministic footprint of the routing data
// structures, from their own element-count accounting (not heap
// sampling): the shape grids per plane kind, and the fast grid's
// interval maps.
type structMemJSON struct {
	ShapeGridBytes int64 `json:"shapegrid_bytes"`
	ShapeRowBytes  int64 `json:"shapegrid_row_bytes"`
	ShapePoolBytes int64 `json:"shapegrid_pool_bytes"`
	FastGridBytes  int64 `json:"fastgrid_bytes"`
}

// scaleJSON is the BENCH_scale.json document: one verified large run.
type scaleJSON struct {
	Name        string  `json:"name"`
	Nets        int     `json:"nets"`
	Seed        int64   `json:"seed"`
	Workers     int     `json:"workers"`
	ShardTiles  int     `json:"shard_tiles"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	Cells       int     `json:"cells"`
	Pins        int     `json:"pins"`
	GenerateMS  float64 `json:"generate_ms"`
	GlobalMS    float64 `json:"global_ms"`
	DetailMS    float64 `json:"detail_ms"`
	TotalMS     float64 `json:"total_ms"`
	Netlength   int64   `json:"netlength"`
	Vias        int     `json:"vias"`
	Errors      int     `json:"errors"`
	Unrouted    int     `json:"unrouted"`
	PeakRSSMB   float64 `json:"peak_rss_mb"`
	BytesPerNet float64 `json:"bytes_per_net"`
	HeapAllocMB float64 `json:"heap_alloc_mb"`

	Structures structMemJSON `json:"structures"`
	Verify     verifyJSON    `json:"verify"`
}

// peakRSSBytes reads VmHWM (peak resident set) from /proc/self/status;
// 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				kb, err := strconv.ParseInt(fields[0], 10, 64)
				if err == nil {
					return kb * 1024
				}
			}
		}
	}
	return 0
}

// scaleBench routes one order-of-magnitude chip end to end, verifies it
// with the sampled pass matrix, and reports the footprint. The suite
// name picks the tier; "huge" is the 10⁵-net acceptance run.
func scaleBench(nets int, seed int64, workers, shardTiles int) *scaleJSON {
	p := chip.ScaledParams(fmt.Sprintf("scale%d", nets), seed, nets)
	doc := &scaleJSON{
		Name: p.Name, Nets: nets, Seed: seed,
		Workers: workers, ShardTiles: shardTiles,
		Rows: p.Rows, Cols: p.Cols,
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	fmt.Fprintf(os.Stderr, "[scale] generating %d-net chip (%d×%d slots)...\n", nets, p.Rows, p.Cols)
	genStart := time.Now()
	c := chip.Generate(p)
	doc.GenerateMS = ms(time.Since(genStart))
	doc.Cells = len(c.Cells)
	doc.Pins = len(c.Pins)
	fmt.Fprintf(os.Stderr, "[scale] %d cells, %d pins, %d nets in %.1fs; routing...\n",
		len(c.Cells), len(c.Pins), len(c.Nets), time.Since(genStart).Seconds())

	res := core.RouteBonnRoute(runCtx, c, core.Options{
		Workers: workers, Seed: seed, ShardTiles: shardTiles, Tracer: tracer,
	})
	doc.DetailMS = ms(res.DetailTime)
	doc.TotalMS = ms(res.Metrics.Runtime)
	if res.Global != nil {
		doc.GlobalMS = ms(res.Global.Total)
	}
	doc.Netlength = res.Metrics.Netlength
	doc.Vias = res.Metrics.Vias
	doc.Errors = res.Metrics.Errors
	doc.Unrouted = res.Metrics.Unrouted
	fmt.Fprintf(os.Stderr, "[scale] routed in %.1fs (errors %d, unrouted %d); verifying...\n",
		res.Metrics.Runtime.Seconds(), res.Metrics.Errors, res.Metrics.Unrouted)

	// Sampled verify: the spacing pass caps shapes per plane and the
	// fast-grid differential strides tracks and along-track positions.
	// All sampling is seeded/strided deterministically and recorded.
	vopt := verify.Options{
		SpacingSampleCap:    400,
		SpacingSampleSeed:   seed,
		FastGridStride:      16 * c.Deck.Layers[0].Pitch,
		FastGridTrackStride: 8,
	}
	vStart := time.Now()
	rep := verify.Run(res, vopt)
	doc.Verify = verifyJSON{
		OK:                  rep.OK(),
		Conservation:        passJSON{Checked: rep.ShapesChecked},
		Spacing:             passJSON{Checked: rep.PairsChecked},
		Connectivity:        passJSON{Checked: rep.NetsChecked},
		Capacity:            passJSON{Checked: rep.EdgesChecked},
		FastGrid:            passJSON{Checked: rep.SamplesChecked},
		SpacingSampled:      rep.SpacingSampled,
		SpacingSampleCap:    vopt.SpacingSampleCap,
		SpacingSampleSeed:   rep.SpacingSampleSeed,
		FastGridStride:      vopt.FastGridStride,
		FastGridTrackStride: vopt.FastGridTrackStride,
		VerifyMS:            ms(time.Since(vStart)),
	}
	for _, v := range rep.Violations {
		switch v.Pass {
		case "conservation":
			doc.Verify.Conservation.Violations++
		case "spacing":
			doc.Verify.Spacing.Violations++
		case "connectivity":
			doc.Verify.Connectivity.Violations++
		case "capacity":
			doc.Verify.Capacity.Violations++
		case "fastgrid":
			doc.Verify.FastGrid.Violations++
		}
		if len(doc.Verify.Findings) < 16 {
			doc.Verify.Findings = append(doc.Verify.Findings, v.String())
		}
	}

	// Deterministic structure footprints from element counts, plus the
	// process-level peak RSS the acceptance budget is pinned on.
	r := res.Router
	for z := range r.Space.Wiring {
		m := r.Space.Wiring[z].Mem()
		doc.Structures.ShapeGridBytes += m.Total()
		doc.Structures.ShapeRowBytes += m.RowBytes
		doc.Structures.ShapePoolBytes += m.ShapeBytes + m.ConfigBytes
	}
	for v := range r.Space.Cuts {
		m := r.Space.Cuts[v].Mem()
		doc.Structures.ShapeGridBytes += m.Total()
		doc.Structures.ShapeRowBytes += m.RowBytes
		doc.Structures.ShapePoolBytes += m.ShapeBytes + m.ConfigBytes
	}
	doc.Structures.FastGridBytes = r.FG.Mem()

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	doc.HeapAllocMB = float64(mem.HeapAlloc) / (1 << 20)
	rss := peakRSSBytes()
	doc.PeakRSSMB = float64(rss) / (1 << 20)
	doc.BytesPerNet = float64(rss) / float64(nets)

	fmt.Fprintf(os.Stderr, "[scale] verify %s in %.1fs; peak RSS %.0f MB (%.0f KB/net)\n",
		map[bool]string{true: "clean", false: "FAILED"}[rep.OK()],
		time.Since(vStart).Seconds(), doc.PeakRSSMB, doc.BytesPerNet/1024)
	return doc
}
