package main

import (
	"fmt"
	"os"
	"time"

	"bonnroute/internal/capest"
	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/steiner"
)

// The -steiner mode: the Steiner-oracle comparison behind the global
// router's per-net oracle choice. Every suite chip is prepared exactly
// as the global stage would (grid graph + capest capacities), then each
// net is answered by both oracles under identical edge costs and the
// results are aggregated per degree bucket — tree wire length, vias,
// and oracle runtime. The exact oracle must never lose on cost; the
// bucket rows show what the optimality is worth (length recovered) and
// what it costs (ns/net) as degree grows.

// steinerBucketJSON is one degree bucket of BENCH_steiner.json.
type steinerBucketJSON struct {
	// Degree labels the bucket by raw terminal count ("2".."9", "10+").
	Degree string `json:"degree"`
	Nets   int    `json:"nets"`
	// ExactCertified counts nets the exact oracle answered with a
	// certified optimum (vs. falling back to Path Composition).
	ExactCertified int `json:"exact_certified"`
	// Improved counts nets where the exact tree is strictly shorter
	// (wire length + via equivalent) than Path Composition's.
	Improved int `json:"improved"`
	// Tree wire length and via totals per oracle.
	PCLength    int64 `json:"pc_length"`
	ExactLength int64 `json:"exact_length"`
	PCVias      int   `json:"pc_vias"`
	ExactVias   int   `json:"exact_vias"`
	// Mean oracle runtime per net, nanoseconds.
	PCNsPerNet    float64 `json:"pc_ns_per_net"`
	ExactNsPerNet float64 `json:"exact_ns_per_net"`
}

// steinerChipJSON is one chip's bucket table.
type steinerChipJSON struct {
	Name    string              `json:"name"`
	Nets    int                 `json:"nets"`
	Buckets []steinerBucketJSON `json:"buckets"`
}

// steinerBenchJSON is the -steiner -bench-json document
// (BENCH_steiner.json).
type steinerBenchJSON struct {
	Suite string `json:"suite"`
	// ExactMax is the degree threshold the exact oracle ran with.
	ExactMax int                 `json:"exact_max"`
	Chips    []steinerChipJSON   `json:"chips"`
	Totals   []steinerBucketJSON `json:"totals"`
}

const steinerBuckets = 9 // "2".."9" then "10+"

func bucketOf(degree int) int {
	if degree >= 10 {
		return steinerBuckets - 1
	}
	return degree - 2
}

func bucketLabel(b int) string {
	if b == steinerBuckets-1 {
		return "10+"
	}
	return fmt.Sprintf("%d", b+2)
}

// steinerBench runs the oracle comparison over the suite chips.
func steinerBench(suiteName string, params []chip.GenParams) *steinerBenchJSON {
	doc := &steinerBenchJSON{Suite: suiteName, ExactMax: steiner.DefaultExactMax}
	totals := make([]steinerBucketJSON, steinerBuckets)
	var totalNS [steinerBuckets][2]int64 // summed ns: [bucket][pc, exact]
	fmt.Println("=== Steiner oracle: exact goal-oriented vs Path Composition ===")

	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[steiner] %s...\n", p.Name)
		c := chip.Generate(p)
		r := detail.New(c, detail.Options{})
		g := core.BuildGlobalGraph(c, 8)
		capest.Compute(c, r.TG, g, capest.Params{})
		capest.ReduceForIntraTile(c, g)
		specs := core.NetSpecs(c, g)

		// The phase-start cost function of Algorithm 2 (all prices 1):
		// wire length plus the via length equivalent, unusable when the
		// capacity estimator granted nothing.
		viaLen := float64(g.TileW) / 2
		cost := func(e int) float64 {
			if g.Cap[e] <= 0 {
				return -1
			}
			if g.IsVia(e) {
				return viaLen
			}
			return float64(g.EdgeLength(e))
		}
		treeCost := func(edges []int) float64 {
			var s float64
			for _, e := range edges {
				s += cost(e)
			}
			return s
		}

		pc := steiner.NewOracle(g)
		ex := steiner.NewExact(g, 0)
		buckets := make([]steinerBucketJSON, steinerBuckets)
		var ns [steinerBuckets][2]int64
		for ni := range specs {
			n := &specs[ni]
			if len(n.Terminals) < 2 {
				continue
			}
			b := bucketOf(len(n.Terminals))

			t0 := time.Now()
			pcEdges, pcOK := pc.Tree(cost, n.Terminals)
			pcNS := time.Since(t0).Nanoseconds()
			t0 = time.Now()
			exEdges, certified, exOK := ex.Tree(cost, n.Terminals)
			exNS := time.Since(t0).Nanoseconds()
			if !pcOK || !exOK {
				continue
			}

			bk := &buckets[b]
			bk.Nets++
			bk.PCLength += steiner.TreeLength(g, pcEdges)
			bk.ExactLength += steiner.TreeLength(g, exEdges)
			bk.PCVias += steiner.CountVias(g, pcEdges)
			bk.ExactVias += steiner.CountVias(g, exEdges)
			ns[b][0] += pcNS
			ns[b][1] += exNS
			if certified {
				bk.ExactCertified++
			}
			pcCost, exCost := treeCost(pcEdges), treeCost(exEdges)
			if exCost < pcCost-1e-9 {
				bk.Improved++
			}
			if exCost > pcCost+1e-9 {
				fmt.Fprintf(os.Stderr, "[steiner] BUG: exact tree costlier than PC on %s net %d (%.3f > %.3f)\n",
					p.Name, ni, exCost, pcCost)
				os.Exit(1)
			}
		}

		cj := steinerChipJSON{Name: p.Name}
		for b := range buckets {
			bk := buckets[b]
			if bk.Nets == 0 {
				continue
			}
			bk.Degree = bucketLabel(b)
			bk.PCNsPerNet = float64(ns[b][0]) / float64(bk.Nets)
			bk.ExactNsPerNet = float64(ns[b][1]) / float64(bk.Nets)
			cj.Nets += bk.Nets
			cj.Buckets = append(cj.Buckets, bk)

			t := &totals[b]
			t.Nets += bk.Nets
			t.ExactCertified += bk.ExactCertified
			t.Improved += bk.Improved
			t.PCLength += bk.PCLength
			t.ExactLength += bk.ExactLength
			t.PCVias += bk.PCVias
			t.ExactVias += bk.ExactVias
			totalNS[b][0] += ns[b][0]
			totalNS[b][1] += ns[b][1]
		}
		doc.Chips = append(doc.Chips, cj)
	}

	fmt.Printf("%-6s %8s %8s %10s %10s %7s %7s %12s %12s %9s\n",
		"deg", "nets", "exact", "pc_len", "exact_len", "pc_via", "ex_via", "pc_ns/net", "ex_ns/net", "improved")
	for b := range totals {
		t := &totals[b]
		if t.Nets == 0 {
			continue
		}
		t.Degree = bucketLabel(b)
		t.PCNsPerNet = float64(totalNS[b][0]) / float64(t.Nets)
		t.ExactNsPerNet = float64(totalNS[b][1]) / float64(t.Nets)
		doc.Totals = append(doc.Totals, *t)
		fmt.Printf("%-6s %8d %8d %10d %10d %7d %7d %12.0f %12.0f %9d\n",
			t.Degree, t.Nets, t.ExactCertified, t.PCLength, t.ExactLength,
			t.PCVias, t.ExactVias, t.PCNsPerNet, t.ExactNsPerNet, t.Improved)
	}
	return doc
}
