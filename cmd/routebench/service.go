package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/incremental"
	"bonnroute/internal/service"
)

// latencyJSON summarizes one endpoint's request latencies.
type latencyJSON struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// serviceBenchJSON is the BENCH_service.json document: the service
// daemon measured end to end over loopback HTTP — session creation,
// a seeded ECO delta stream applied via /reroute, and the same stream
// pre-screened via /assess. AssessSpeedupMedian is the headline: how
// many times cheaper (median latency) the capacity-only pre-screen is
// than the full ECO reroute on the same deltas.
type serviceBenchJSON struct {
	Chip                string      `json:"chip"`
	Nets                int         `json:"nets"`
	Seed                int64       `json:"seed"`
	Deltas              int         `json:"deltas"`
	Workers             int         `json:"workers"`
	GoMaxProcs          int         `json:"gomaxprocs"`
	CreateMS            float64     `json:"create_ms"`
	Reroute             latencyJSON `json:"reroute"`
	Assess              latencyJSON `json:"assess"`
	AssessSpeedupMedian float64     `json:"assess_speedup_median"`
	RerouteThroughput   float64     `json:"reroute_throughput_per_sec"`
	FinalGeneration     uint64      `json:"final_generation"`
}

func summarizeLatencies(lat []time.Duration) latencyJSON {
	if len(lat) == 0 {
		return latencyJSON{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	at := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return latencyJSON{
		Count:  len(sorted),
		P50MS:  ms(at(0.50)),
		P99MS:  ms(at(0.99)),
		MeanMS: ms(total / time.Duration(len(sorted))),
		MinMS:  ms(sorted[0]),
		MaxMS:  ms(sorted[len(sorted)-1]),
	}
}

// serviceBench measures the routing service over loopback HTTP: create
// one session, then replay a seeded delta stream, pre-screening every
// delta with /assess and applying it with /reroute. The local chip
// mirror (incremental.Apply is deterministic) keeps delta generation
// valid against the daemon's evolving in-memory chip.
func serviceBench(workers, deltas int) *serviceBenchJSON {
	p := chip.GenParams{
		Name: "svc1", Seed: 21, Rows: 8, Cols: 24, NumNets: 140,
		NumLayers: 6, LocalityRadius: 12, PowerStripePeriod: 4,
	}
	svc := service.New(service.Config{MaxInFlight: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	post := func(path string, body any) (int, []byte) {
		data, err := json.Marshal(body)
		if err != nil {
			fmt.Fprintln(os.Stderr, "service bench:", err)
			os.Exit(1)
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, "service bench:", err)
			os.Exit(1)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, out
	}

	fmt.Fprintf(os.Stderr, "[service] creating session (%s, %d nets requested)...\n", p.Name, p.NumNets)
	createReq := map[string]any{
		"name": "bench",
		"chip": service.ChipWire{
			Name: p.Name, Seed: p.Seed, Rows: p.Rows, Cols: p.Cols,
			NumNets: p.NumNets, NumLayers: p.NumLayers,
			LocalityRadius: p.LocalityRadius, PowerStripePeriod: p.PowerStripePeriod,
		},
		"options": service.OptionsWire{Seed: p.Seed, Workers: workers},
	}
	createStart := time.Now()
	code, body := post("/sessions", createReq)
	createDur := time.Since(createStart)
	if code != http.StatusCreated {
		fmt.Fprintf(os.Stderr, "service bench: create failed: %d %s\n", code, body)
		os.Exit(1)
	}

	// Local mirror of the daemon's chip so each delta is generated
	// against the state it will actually be applied to.
	cur := chip.Generate(p)
	nets := len(cur.Nets)
	gen := uint64(1)

	var rerouteLat, assessLat []time.Duration
	var rerouteWall time.Duration
	for i := 0; i < deltas; i++ {
		delta := incremental.RandomDelta(cur, p.Seed*1000+int64(i), incremental.GenConfig{})

		start := time.Now()
		code, body = post("/sessions/bench/assess", map[string]any{"delta": delta})
		assessLat = append(assessLat, time.Since(start))
		if code != http.StatusOK {
			fmt.Fprintf(os.Stderr, "service bench: assess %d failed: %d %s\n", i, code, body)
			os.Exit(1)
		}

		start = time.Now()
		code, body = post("/sessions/bench/reroute", map[string]any{
			"from_generation": gen, "delta": delta,
		})
		d := time.Since(start)
		rerouteLat = append(rerouteLat, d)
		rerouteWall += d
		if code != http.StatusOK {
			fmt.Fprintf(os.Stderr, "service bench: reroute %d failed: %d %s\n", i, code, body)
			os.Exit(1)
		}
		var rr struct {
			Generation uint64 `json:"generation"`
		}
		if err := json.Unmarshal(body, &rr); err != nil {
			fmt.Fprintln(os.Stderr, "service bench:", err)
			os.Exit(1)
		}
		gen = rr.Generation

		next, _, err := incremental.Apply(cur, &delta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "service bench: mirror apply %d: %v\n", i, err)
			os.Exit(1)
		}
		cur = next
		if (i+1)%10 == 0 {
			fmt.Fprintf(os.Stderr, "[service] %d/%d deltas applied (generation %d)\n", i+1, deltas, gen)
		}
	}

	doc := &serviceBenchJSON{
		Chip: p.Name, Nets: nets, Seed: p.Seed, Deltas: deltas,
		Workers: workers, GoMaxProcs: runtime.GOMAXPROCS(0),
		CreateMS:        float64(createDur.Microseconds()) / 1000,
		Reroute:         summarizeLatencies(rerouteLat),
		Assess:          summarizeLatencies(assessLat),
		FinalGeneration: gen,
	}
	if doc.Assess.P50MS > 0 {
		doc.AssessSpeedupMedian = doc.Reroute.P50MS / doc.Assess.P50MS
	}
	if rerouteWall > 0 {
		doc.RerouteThroughput = float64(len(rerouteLat)) / rerouteWall.Seconds()
	}

	fmt.Printf("=== Service bench: %d ECO deltas over HTTP ===\n", deltas)
	fmt.Printf("create          %10.1f ms\n", doc.CreateMS)
	fmt.Printf("reroute p50/p99 %10.1f / %.1f ms (%.2f/s)\n", doc.Reroute.P50MS, doc.Reroute.P99MS, doc.RerouteThroughput)
	fmt.Printf("assess  p50/p99 %10.2f / %.2f ms\n", doc.Assess.P50MS, doc.Assess.P99MS)
	fmt.Printf("assess speedup  %10.1fx (median)\n", doc.AssessSpeedupMedian)
	return doc
}
