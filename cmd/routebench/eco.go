package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/incremental"
	"bonnroute/internal/verify"
)

// ecoNote explains what the artifact compares: both paths start from the
// same finished baseline routing and the same mutated chip; "incremental"
// is bonnroute.Reroute (replay clean nets, re-route the dirty set),
// "full" is core.RouteBonnRoute from scratch on the mutated chip.
const ecoNote = "incremental_ms = incremental.Reroute wall time (apply+prep+dirty+replay+" +
	"restricted global+detail+cleanup); full_ms = from-scratch RouteBonnRoute on the same " +
	"mutated chip; speedup = full_ms / incremental_ms; quality fields come from the same " +
	"verifier both flows face in the equivalence suite"

// ecoStageJSON is the incremental run's stage breakdown (milliseconds).
type ecoStageJSON struct {
	ApplyMS   float64 `json:"apply_ms"`
	PrepMS    float64 `json:"prep_ms"`
	DirtyMS   float64 `json:"dirty_ms"`
	ReplayMS  float64 `json:"replay_ms"`
	GlobalMS  float64 `json:"global_ms"`
	DetailMS  float64 `json:"detail_ms"`
	CleanupMS float64 `json:"cleanup_ms"`
	TotalMS   float64 `json:"total_ms"`
}

// ecoQualityJSON is one flow's quality on the mutated chip.
type ecoQualityJSON struct {
	Netlength  int64 `json:"netlength"`
	Vias       int   `json:"vias"`
	Errors     int   `json:"errors"`
	Unrouted   int   `json:"unrouted"`
	Violations int   `json:"verify_violations"`
}

// ecoChipJSON is one chip's incremental-vs-full comparison.
type ecoChipJSON struct {
	Name string `json:"name"`
	Nets int    `json:"nets"`
	// Delta size (the ECO) and its fraction of the netlist.
	DeltaAddNets   int     `json:"delta_add_nets"`
	DeltaRemove    int     `json:"delta_remove_nets"`
	DeltaMovePins  int     `json:"delta_move_pins"`
	DeltaBlockages int     `json:"delta_blockages"`
	DeltaFraction  float64 `json:"delta_fraction"`
	// What the engine decided to redo.
	DirtyNets     int     `json:"dirty_nets"`
	DirtyFraction float64 `json:"dirty_fraction"`
	// DirtyByRule: added, moved pin, previously unrouted, access drift,
	// impact region (DESIGN.md §10).
	DirtyByRule   [5]int `json:"dirty_by_rule"`
	ReplayedNets  int    `json:"replayed_nets"`
	RepricedEdges int    `json:"repriced_edges"`
	FellBack      bool   `json:"fell_back"`

	Incremental  ecoStageJSON   `json:"incremental"`
	FullMS       float64        `json:"full_ms"`
	FullGlobalMS float64        `json:"full_global_ms"`
	FullDetailMS float64        `json:"full_detail_ms"`
	Speedup      float64        `json:"speedup"`
	IncQuality   ecoQualityJSON `json:"incremental_quality"`
	FullQuality  ecoQualityJSON `json:"full_quality"`
}

// ecoJSON is the -eco -bench-json document (BENCH_eco.json).
type ecoJSON struct {
	Suite      string        `json:"suite"`
	Workers    int           `json:"workers"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Note       string        `json:"note"`
	Chips      []ecoChipJSON `json:"chips"`
	MinSpeedup float64       `json:"min_speedup"`
}

// ecoDelta sizes a small ECO for an n-net chip: a few percent of the
// netlist added and removed, one pin move, one blockage — well under the
// 10% delta the incremental engine is built for.
func ecoDelta(n int) incremental.GenConfig {
	few := max(1, n/50)
	return incremental.GenConfig{
		AddNets: few, RemoveNets: few, MovePins: 1, AddBlockages: 1,
	}
}

func ecoQuality(res *core.Result) ecoQualityJSON {
	rep := verify.Run(res, verify.Options{})
	return ecoQualityJSON{
		Netlength:  res.Metrics.Netlength,
		Vias:       res.Metrics.Vias,
		Errors:     res.Metrics.Errors,
		Unrouted:   res.Metrics.Unrouted,
		Violations: len(rep.Violations),
	}
}

// ecoBench routes every suite chip, applies a small random delta, and
// times incremental.Reroute against a from-scratch run of the same
// mutated chip. Exits non-zero if either flow fails verification or the
// incremental flow comes out slower than from scratch.
func ecoBench(suiteName string, params []chip.GenParams, workers int) *ecoJSON {
	doc := &ecoJSON{
		Suite:      suiteName,
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note:       ecoNote,
	}
	fmt.Println("=== ECO: incremental vs from-scratch rerouting ===")
	for _, p := range params {
		fmt.Fprintf(os.Stderr, "[eco] %s baseline...\n", p.Name)
		opt := core.Options{Workers: workers, Seed: p.Seed, Tracer: tracer}
		prev := core.RouteBonnRoute(runCtx, chip.Generate(p), opt)

		cfg := ecoDelta(len(prev.Chip.Nets))
		delta := incremental.RandomDelta(prev.Chip, p.Seed*7+5, cfg)

		fmt.Fprintf(os.Stderr, "[eco] %s incremental...\n", p.Name)
		inc, st, err := incremental.Reroute(runCtx, prev, delta, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eco: %s: %v\n", p.Name, err)
			os.Exit(1)
		}

		fmt.Fprintf(os.Stderr, "[eco] %s from scratch...\n", p.Name)
		fullStart := time.Now()
		full := core.RouteBonnRoute(runCtx, inc.Chip, opt)
		fullTime := time.Since(fullStart)

		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		cj := ecoChipJSON{
			Name:           p.Name,
			Nets:           len(inc.Chip.Nets),
			DeltaAddNets:   len(delta.AddNets),
			DeltaRemove:    len(delta.RemoveNets),
			DeltaMovePins:  len(delta.MovePins),
			DeltaBlockages: len(delta.AddBlockages),
			DirtyNets:      st.DirtyNets,
			DirtyFraction:  st.DirtyFraction,
			DirtyByRule:    st.DirtyByRule,
			ReplayedNets:   st.ReplayedNets,
			RepricedEdges:  st.RepricedEdges,
			FellBack:       st.FellBack,
			Incremental: ecoStageJSON{
				ApplyMS: ms(st.ApplyTime), PrepMS: ms(st.PrepTime),
				DirtyMS: ms(st.DirtyTime), ReplayMS: ms(st.ReplayTime),
				GlobalMS: ms(st.GlobalTime), DetailMS: ms(st.DetailTime),
				CleanupMS: ms(st.CleanupTime), TotalMS: ms(st.Total),
			},
			FullMS:       ms(fullTime),
			FullDetailMS: ms(full.DetailTime),
			IncQuality:   ecoQuality(inc),
			FullQuality:  ecoQuality(full),
		}
		if full.Global != nil {
			cj.FullGlobalMS = ms(full.Global.Total)
		}
		cj.DeltaFraction = float64(len(delta.AddNets)+len(delta.RemoveNets)+len(delta.MovePins)) /
			float64(len(prev.Chip.Nets))
		if cj.Incremental.TotalMS > 0 {
			cj.Speedup = cj.FullMS / cj.Incremental.TotalMS
		}
		if cj.IncQuality.Violations > 0 || cj.FullQuality.Violations > 0 {
			fmt.Fprintf(os.Stderr, "eco: %s: verification failed (incremental %d, full %d violations)\n",
				p.Name, cj.IncQuality.Violations, cj.FullQuality.Violations)
			os.Exit(1)
		}
		if doc.MinSpeedup == 0 || cj.Speedup < doc.MinSpeedup {
			doc.MinSpeedup = cj.Speedup
		}
		doc.Chips = append(doc.Chips, cj)
	}
	printEco(doc)
	if doc.MinSpeedup < 1 {
		fmt.Fprintf(os.Stderr, "eco: incremental slower than from scratch (%.2fx min speedup)\n",
			doc.MinSpeedup)
		os.Exit(1)
	}
	return doc
}

func printEco(doc *ecoJSON) {
	fmt.Printf("%-8s %5s %7s %7s %8s %14s %10s %8s %9s %9s\n",
		"chip", "nets", "delta%", "dirty%", "replayed", "incremental_ms", "full_ms", "speedup", "inc_unrtd", "full_unrtd")
	for _, c := range doc.Chips {
		fb := ""
		if c.FellBack {
			fb = " (fallback)"
		}
		fmt.Printf("%-8s %5d %6.1f%% %6.1f%% %8d %14.1f %10.1f %7.2fx %9d %9d%s\n",
			c.Name, c.Nets, 100*c.DeltaFraction, 100*c.DirtyFraction, c.ReplayedNets,
			c.Incremental.TotalMS, c.FullMS, c.Speedup,
			c.IncQuality.Unrouted, c.FullQuality.Unrouted, fb)
		s := c.Incremental
		fmt.Printf("%-8s   stages: apply %.1f  prep %.1f  dirty %.1f  replay %.1f  global %.1f  detail %.1f  cleanup %.1f\n",
			"", s.ApplyMS, s.PrepMS, s.DirtyMS, s.ReplayMS, s.GlobalMS, s.DetailMS, s.CleanupMS)
		fmt.Printf("%-8s   dirty by rule: added %d  moved %d  unrouted %d  access %d  impact %d   full: global %.1f  detail %.1f\n",
			"", c.DirtyByRule[0], c.DirtyByRule[1], c.DirtyByRule[2], c.DirtyByRule[3], c.DirtyByRule[4],
			c.FullGlobalMS, c.FullDetailMS)
	}
	fmt.Printf("min speedup: %.2fx\n\n", doc.MinSpeedup)
}
